(** The observability hook handed down through the evaluators and the
    service registry: one tracer plus one metrics registry.

    Instrumented entry points ({!Axml_services.Registry.invoke},
    {!Axml_core.Lazy_eval.run}, {!Axml_core.Naive.run}) take
    [?obs:Obs.t] defaulting to {!null}, whose components are both
    disabled — every recording call is a single branch, so the
    instrumentation is free when nobody is watching. *)

type t = {
  trace : Trace.t;
  metrics : Metrics.t;
}

val null : t
(** Both components disabled. The default everywhere. *)

val create : ?clock:(unit -> float) -> unit -> t
(** Both components enabled. [clock] feeds the tracer's wall clock
    (default [Unix.gettimeofday]; tests inject a fake). *)

val tracing : ?clock:(unit -> float) -> unit -> t
(** Tracer only; metrics stay disabled. *)

val measuring : unit -> t
(** Metrics only; tracer stays disabled. *)

val enabled : t -> bool
(** At least one component is live — the guard for any work beyond a
    plain recording call (building attribute lists, formatting). *)

val fork : t -> t
(** The hook to hand one member of a concurrent batch: the metrics
    registry is shared (it is mutex-guarded and its counters commute),
    the tracer is replaced by a private {!Trace.fragment} so concurrent
    spans cannot interleave on the parent's span stack. [fork null] is
    [null]. *)

val join : t -> t -> unit
(** [join parent child] absorbs the child's trace fragment back into
    the parent ({!Trace.absorb}); call it sequentially, in batch input
    order, after the worker finished. No-op when {!fork} returned the
    parent unchanged. *)
