module Tree = Axml_xml.Tree
module Print = Axml_xml.Print
module Doc = Axml_doc
module Eval = Axml_query.Eval
module Registry = Axml_services.Registry
module Lazy_eval = Axml_core.Lazy_eval
module Engine = Axml_engine.Engine
module Exec = Axml_exec.Exec
module Obs = Axml_obs.Obs
module Metrics = Axml_obs.Metrics
module Trace = Axml_obs.Trace
module Server = Axml_net.Server
module Client = Axml_net.Client
module Remote = Axml_net.Remote
module Adversary = Axml_workload.Adversary
module Project = Axml_project.Project
module Sched = Axml_sched.Sched

type case = {
  case_seed : int;
  family : Adversary.family;
  scale : int;
  lazy_strategy : bool;
  jobs : int;
  remote : bool;
  push : bool;
  memoize : bool;
  fault_rate : float;
  fault_permanent : bool;
  max_retries : int;
  budget : int;
  project : bool;
  shards : int;
  replicate : bool;
  wire_binary : bool;
  match_jobs : int;
}

type failure = { oracle : string; detail : string }

(* ------------------------------------------------------------------ *)
(* Case derivation: a pure function of the seed. *)

let case_of_seed seed =
  let rng = Random.State.make [| 0xF122D; seed |] in
  let family =
    snd (List.nth Adversary.families (Random.State.int rng (List.length Adversary.families)))
  in
  let scale = 8 + Random.State.int rng 72 in
  let lazy_strategy = Random.State.float rng 1.0 < 0.65 in
  let jobs = if Random.State.bool rng then 1 else 4 in
  let remote = Random.State.float rng 1.0 < 0.25 in
  let push_draw = Random.State.bool rng in
  let push = lazy_strategy && push_draw in
  let memoize = Random.State.float rng 1.0 < 0.3 in
  let fault_rate =
    if Random.State.float rng 1.0 < 0.45 then 0.0 else Random.State.float rng 0.6
  in
  let fault_permanent = Random.State.float rng 1.0 < 0.12 in
  let max_retries = Random.State.int rng 4 in
  let budget = 16 + Random.State.int rng 64 in
  (* drawn last so every earlier dimension derives identically per seed
     to the pre-projection case stream *)
  let project = Random.State.float rng 1.0 < 0.35 in
  (* and the scheduler dimensions after that, for the same reason: a
     two-way static service split, or a twin local replica — memoization
     is forced off under replication, split caches would legitimately
     diverge from the unsharded arm *)
  let shards = if Random.State.float rng 1.0 < 0.3 then 2 else 1 in
  let replicate = shards = 1 && Random.State.float rng 1.0 < 0.25 in
  let memoize = memoize && not replicate in
  (* the wire dimension last, for the same reason again: remote cases
     split between the binary codec and pinned JSON *)
  let wire_binary = Random.State.bool rng in
  (* the intra-document match fan-out, drawn last like the dimensions
     above so every earlier draw is stable per seed; forced sequential
     for naive, which has no detect passes to fan out *)
  let mj_draw = Random.State.bool rng in
  let match_jobs = if lazy_strategy && mj_draw then 4 else 1 in
  {
    case_seed = seed;
    family;
    scale;
    lazy_strategy;
    jobs;
    remote;
    push;
    memoize;
    fault_rate;
    fault_permanent;
    max_retries;
    budget;
    project;
    shards;
    replicate;
    wire_binary;
    match_jobs;
  }

let case_to_string c =
  Printf.sprintf
    "seed=%d family=%s scale=%d strategy=%s jobs=%d remote=%b push=%b memo=%b fault_rate=%.2f \
     permanent=%b retries=%d budget=%d project=%b shards=%d replicate=%b wire=%s \
     match_jobs=%d"
    c.case_seed (Adversary.family_name c.family) c.scale
    (if c.lazy_strategy then "lazy" else "naive")
    c.jobs c.remote c.push c.memoize c.fault_rate c.fault_permanent c.max_retries c.budget
    c.project c.shards c.replicate
    (if c.wire_binary then "binary" else "json")
    c.match_jobs

let replay_hint c =
  Printf.sprintf "axml fuzz --seed %d --iters 1 --family %s" c.case_seed
    (Adversary.family_name c.family)

let adversary_config (c : case) : Adversary.config =
  {
    Adversary.family = c.family;
    seed = c.case_seed;
    scale = c.scale;
    memoize = c.memoize;
    fault_rate = c.fault_rate;
    fault_permanent = c.fault_permanent;
    fault_seed = c.case_seed lxor 0x9e37;
    max_retries = c.max_retries;
  }

(* ------------------------------------------------------------------ *)
(* Answer comparison *)

let signature (b : Eval.binding) =
  (b.Eval.vars, List.map (fun (_, n) -> Print.to_string (Doc.node_to_xml n)) b.Eval.results)

let tuples answers = List.sort_uniq compare (List.map signature answers)
let subset xs ys = List.for_all (fun x -> List.mem x ys) xs

let answer_bytes (r : Engine.report) =
  Print.forest_to_string (Eval.bindings_to_xml r.Engine.answers)

let feq a b = Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a +. Float.abs b)

(* ------------------------------------------------------------------ *)
(* Evaluation arms *)

exception Hang

(* Evaluation runs on a worker thread; the calling thread polls for the
   result under a wall-clock deadline. A hung arm leaks its thread —
   acceptable, the run is about to report a failure and exit. *)
let with_watchdog ~seconds f =
  let result = ref None in
  let error = ref None in
  let _t : Thread.t =
    Thread.create (fun () -> try result := Some (f ()) with e -> error := Some e) ()
  in
  let deadline = Unix.gettimeofday () +. seconds in
  let rec wait () =
    match (!result, !error) with
    | Some r, _ -> r
    | _, Some e -> raise e
    | None, None ->
      if Unix.gettimeofday () > deadline then raise Hang
      else begin
        Thread.delay 0.002;
        wait ()
      end
  in
  wait ()

let with_pool jobs f =
  if jobs <= 1 then f None
  else begin
    let pool = Exec.create ~jobs () in
    Fun.protect ~finally:(fun () -> Exec.shutdown pool) (fun () -> f (Some pool))
  end

(* Loopback-remote: the instance's registry is served by a TCP peer on
   an ephemeral port and re-registered locally through the client, so
   the evaluator exercises the full wire path (faults stay server-side;
   the client sees degradations). *)
let remote_retry =
  {
    Registry.max_retries = 2;
    base_backoff = 0.005;
    backoff_factor = 2.0;
    max_backoff = 0.02;
    attempt_timeout = 10.0;
  }

let with_remote ~wire ~registry:served f =
  let server = Server.create ~registry:served () in
  Server.start server;
  Fun.protect
    ~finally:(fun () -> Server.stop server)
    (fun () ->
      let client = Client.create ~wire ~host:"127.0.0.1" ~port:(Server.port server) () in
      Fun.protect
        ~finally:(fun () -> Client.close client)
        (fun () ->
          let registry = Registry.create () in
          let _names = Remote.register ~retry:remote_retry ~memoize:false ~registry client in
          f registry))

(* One evaluation arm: a fresh instance every time (evaluation mutates
   the document in place). *)
let run_arm ~watchdog (c : case) ~jobs ?(match_jobs = 1) ~push ?(project = false) ?obs ()
    : Engine.report =
  with_watchdog ~seconds:watchdog (fun () ->
      let acfg = adversary_config c in
      let inst = Adversary.generate acfg in
      let projector =
        if project then
          Some (Project.compile ~schema:inst.Adversary.schema inst.Adversary.query)
        else None
      in
      (* The scheduler dimension is local-only (a remote case already
         exercises the wire path): a two-way static split of the service
         names over the one registry, or a twin replica regenerated from
         the same config — identical documents, services and fault fates,
         so routing must be answer-invisible. *)
      let dispatch_for registry =
        if c.replicate then
          let twin = Adversary.generate acfg in
          Some
            (Sched.dispatch
               (Sched.create
                  [
                    Sched.spec ~id:"r1" registry;
                    Sched.spec ~id:"r2" twin.Adversary.registry;
                  ]))
        else if c.shards = 2 then
          let names = Registry.names registry in
          let evens = List.filteri (fun i _ -> i mod 2 = 0) names in
          let odds = List.filteri (fun i _ -> i mod 2 = 1) names in
          Some
            (Sched.dispatch
               (Sched.create
                  [
                    Sched.spec ~id:"even" ~services:evens registry;
                    Sched.spec ~id:"odd" ~services:odds registry;
                  ]))
        else None
      in
      let eval registry =
        let dispatch = if c.remote then None else dispatch_for registry in
        with_pool jobs (fun pool ->
            if c.lazy_strategy then begin
              let strategy = { Lazy_eval.nfqa with Lazy_eval.max_calls = c.budget } in
              let strategy = Lazy_eval.with_match_jobs match_jobs strategy in
              let strategy = if push then Lazy_eval.with_push strategy else strategy in
              Lazy_eval.run ~strategy ?obs ?pool ?projector ?dispatch ~registry
                inst.Adversary.query inst.Adversary.doc
            end
            else
              Engine.naive_run ~max_calls:c.budget ?pool ?obs ?projector ?dispatch registry
                inst.Adversary.query inst.Adversary.doc)
      in
      if c.remote then begin
        let served = Adversary.generate acfg in
        let wire = if c.wire_binary then `Auto else `Json in
        with_remote ~wire ~registry:served.Adversary.registry eval
      end
      else eval inst.Adversary.registry)

(* The model: a fault-free naive run with a budget generous enough to
   dominate anything a budgeted arm can produce. For the unbounded
   family (3 chains at most, expanded breadth-first) a 4x+256 budget
   guarantees every chain reaches at least the index any budget-[B] arm
   could have reached. *)
let ref_budget (c : case) =
  match c.family with Adversary.Unbounded_recursion -> (4 * c.budget) + 256 | _ -> 100_000

let reference_arm ~watchdog (c : case) =
  with_watchdog ~seconds:watchdog (fun () ->
      let acfg =
        { (adversary_config c) with Adversary.fault_rate = 0.0; fault_permanent = false }
      in
      let inst = Adversary.generate acfg in
      Engine.naive_run ~max_calls:(ref_budget c) inst.Adversary.registry inst.Adversary.query
        inst.Adversary.doc)

(* ------------------------------------------------------------------ *)
(* The oracle battery *)

exception Violation of failure

let violate oracle fmt =
  Printf.ksprintf (fun detail -> raise (Violation { oracle; detail })) fmt

let reconcile (obs : Obs.t) (r : Engine.report) =
  let m = obs.Obs.metrics in
  let ck name got =
    let counted = Metrics.count m name in
    if counted <> got then violate "reconcile" "%s: report %d, metrics %d" name got counted
  in
  ck "eval.invoked" r.Engine.invoked;
  ck "eval.rounds" r.Engine.rounds;
  ck "eval.retries" r.Engine.retries;
  ck "eval.timeouts" r.Engine.timeouts;
  ck "eval.failed_calls" r.Engine.failed_calls;
  ck "eval.bytes" r.Engine.bytes_transferred;
  ck "eval.sharded_calls" r.Engine.sharded_calls;
  ck "eval.rebalanced_calls" r.Engine.rebalanced_calls;
  ck "eval.rerouted_calls" r.Engine.rerouted_calls;
  if not (feq (Metrics.value m "eval.backoff_seconds") r.Engine.backoff_seconds) then
    violate "reconcile" "backoff_seconds: report %g, metrics %g" r.Engine.backoff_seconds
      (Metrics.value m "eval.backoff_seconds");
  let gauge name got =
    let v = int_of_float (Metrics.value m name) in
    if v <> got then violate "reconcile" "%s: report %d, metrics %d" name got v
  in
  gauge "eval.full_nodes" r.Engine.full_nodes;
  gauge "eval.view_rebuild_nodes" r.Engine.view_rebuild_nodes;
  gauge "eval.parallel_match_batches" r.Engine.parallel_match_batches;
  gauge "eval.projected_nodes" r.Engine.projected_nodes;
  gauge "eval.projected_bytes_saved" r.Engine.projected_bytes_saved;
  (match Trace.well_formed obs.Obs.trace with
  | Ok () -> ()
  | Error e -> violate "reconcile" "trace not well-formed: %s" e);
  match Trace.tree obs.Obs.trace with
  | Error e -> violate "reconcile" "trace tree: %s" e
  | Ok forest ->
    let rec flatten (n : Trace.node) = n :: List.concat_map flatten n.Trace.children in
    let spans = List.concat_map flatten forest in
    let invokes =
      List.length (List.filter (fun (n : Trace.node) -> n.Trace.node_name = "service.invoke") spans)
    in
    if invokes <> r.Engine.invoked + r.Engine.failed_calls then
      violate "reconcile" "service.invoke spans %d <> invoked %d + failed %d" invokes
        r.Engine.invoked r.Engine.failed_calls

let compare_jobs ?(oracle = "jobs-determinism") ~local (a : Engine.report) (b : Engine.report) =
  if answer_bytes a <> answer_bytes b then
    violate oracle "serialized answers differ between jobs 1 and 4";
  let ck name f =
    if f a <> f b then
      violate oracle "%s differs between jobs 1 and 4 (%d vs %d)" name (f a) (f b)
  in
  ck "invoked" (fun (r : Engine.report) -> r.Engine.invoked);
  ck "rounds" (fun (r : Engine.report) -> r.Engine.rounds);
  ck "failed_calls" (fun (r : Engine.report) -> r.Engine.failed_calls);
  if a.Engine.complete <> b.Engine.complete then
    violate oracle "complete flag differs between jobs 1 and 4";
  if local then begin
    ck "bytes" (fun (r : Engine.report) -> r.Engine.bytes_transferred);
    ck "retries" (fun (r : Engine.report) -> r.Engine.retries);
    ck "timeouts" (fun (r : Engine.report) -> r.Engine.timeouts);
    if not (feq a.Engine.simulated_seconds b.Engine.simulated_seconds) then
      violate oracle "simulated clock differs between jobs 1 and 4 (%g vs %g)"
        a.Engine.simulated_seconds b.Engine.simulated_seconds
  end

let check ?(watchdog = 30.0) (c : case) : failure option =
  try
    let reference = tuples (reference_arm ~watchdog c).Engine.answers in
    (* the primary arm, fully instrumented *)
    let obs = Obs.create () in
    let r =
      run_arm ~watchdog c ~jobs:c.jobs ~match_jobs:c.match_jobs ~push:c.push
        ~project:c.project ~obs ()
    in
    let answers = tuples r.Engine.answers in
    if r.Engine.invoked > c.budget then
      violate "budget" "invoked %d > budget %d" r.Engine.invoked c.budget;
    if not (subset answers reference) then
      violate "subset" "%d answer tuples not all within the %d-tuple fault-free reference"
        (List.length answers) (List.length reference);
    if r.Engine.complete && r.Engine.failed_calls > 0 then
      violate "complete-flag" "complete with %d failed calls" r.Engine.failed_calls;
    if r.Engine.complete && answers <> reference then
      violate "complete-flag" "complete but %d answer tuples <> %d reference tuples"
        (List.length answers) (List.length reference);
    if (not r.Engine.complete) && r.Engine.failed_calls = 0 && r.Engine.invoked < c.budget
    then
      violate "complete-flag" "incomplete with no failures and only %d/%d budget used"
        r.Engine.invoked c.budget;
    if
      c.family = Adversary.Unbounded_recursion
      && c.fault_rate = 0.0
      && (not c.fault_permanent)
      && r.Engine.complete
    then violate "budget" "unbounded recursion reported complete";
    reconcile obs r;
    (* jobs determinism + obs transparency *)
    let r1 =
      run_arm ~watchdog c ~jobs:1 ~match_jobs:c.match_jobs ~push:c.push ~project:c.project ()
    in
    let r4 =
      run_arm ~watchdog c ~jobs:4 ~match_jobs:c.match_jobs ~push:c.push ~project:c.project ()
    in
    let rj = if c.jobs = 1 then r1 else r4 in
    if answer_bytes r <> answer_bytes rj then
      violate "obs-transparency" "recording a trace changed the serialized answers";
    compare_jobs ~local:(not c.remote) r1 r4;
    (* parallel ≡ sequential matching: fanning the match/detect passes
       out over domains must be invisible in answers, counters and the
       simulated clock *)
    if c.lazy_strategy then begin
      let rm1 = run_arm ~watchdog c ~jobs:1 ~match_jobs:1 ~push:c.push ~project:c.project () in
      let rm4 = run_arm ~watchdog c ~jobs:1 ~match_jobs:4 ~push:c.push ~project:c.project () in
      compare_jobs ~oracle:"match-jobs-determinism" ~local:(not c.remote) rm1 rm4
    end;
    (* projected ≡ full: type-based projection must never change what a
       run can answer. Fault fates are keyed by (service, params, retry),
       so the projected run's calls — a subset of the full run's — draw
       identical fates. *)
    if c.project then begin
      let rf = run_arm ~watchdog c ~jobs:1 ~push:c.push ~project:false () in
      let rp = r1 in
      if not (subset (tuples rp.Engine.answers) reference) then
        violate "projection" "projected answers escape the fault-free reference";
      if rp.Engine.full_nodes = 0 then
        violate "projection" "projected arm reports no projection activity";
      if rp.Engine.projected_nodes > rp.Engine.full_nodes then
        violate "projection" "kept %d of %d nodes" rp.Engine.projected_nodes
          rp.Engine.full_nodes;
      if rf.Engine.complete then begin
        if not rp.Engine.complete then
          violate "projection" "full run complete but projected run is not";
        if tuples rp.Engine.answers <> tuples rf.Engine.answers then
          violate "projection" "both complete yet answers differ (%d vs %d tuples)"
            (List.length (tuples rp.Engine.answers))
            (List.length (tuples rf.Engine.answers));
        if rp.Engine.invoked > rf.Engine.invoked then
          violate "projection" "projected run invoked more calls (%d > %d)"
            rp.Engine.invoked rf.Engine.invoked
      end;
      if rp.Engine.complete && tuples rp.Engine.answers <> reference then
        violate "projection" "projected run complete but %d tuples <> %d reference tuples"
          (List.length (tuples rp.Engine.answers))
          (List.length reference)
    end;
    (* wire equivalence (remote cases): the binary codec and pinned JSON
       must produce byte-identical serialized answers and the same
       degradation profile — the codec is invisible above the framing
       layer *)
    if c.remote then begin
      let rb =
        run_arm ~watchdog { c with wire_binary = true } ~jobs:1 ~push:c.push
          ~project:c.project ()
      in
      let rj =
        run_arm ~watchdog { c with wire_binary = false } ~jobs:1 ~push:c.push
          ~project:c.project ()
      in
      if answer_bytes rb <> answer_bytes rj then
        violate "wire-equivalence" "binary and JSON serialized answers differ";
      if rb.Engine.complete <> rj.Engine.complete then
        violate "wire-equivalence" "binary complete=%b, JSON complete=%b" rb.Engine.complete
          rj.Engine.complete;
      if rb.Engine.failed_calls <> rj.Engine.failed_calls then
        violate "wire-equivalence" "binary failed %d calls, JSON %d" rb.Engine.failed_calls
          rj.Engine.failed_calls;
      if rb.Engine.invoked <> rj.Engine.invoked then
        violate "wire-equivalence" "binary invoked %d, JSON %d" rb.Engine.invoked
          rj.Engine.invoked
    end;
    (* push equivalence: the generator keeps fault fates byte-independent,
       so push-on and push-off must degrade identically *)
    if c.lazy_strategy then begin
      let ron = run_arm ~watchdog c ~jobs:1 ~push:true ~project:c.project () in
      let roff = run_arm ~watchdog c ~jobs:1 ~push:false ~project:c.project () in
      if tuples ron.Engine.answers <> tuples roff.Engine.answers then
        violate "push-equivalence" "push-on and push-off answers differ (%d vs %d tuples)"
          (List.length (tuples ron.Engine.answers))
          (List.length (tuples roff.Engine.answers));
      if ron.Engine.complete <> roff.Engine.complete then
        violate "push-equivalence" "push-on complete=%b, push-off complete=%b"
          ron.Engine.complete roff.Engine.complete;
      if ron.Engine.failed_calls <> roff.Engine.failed_calls then
        violate "push-equivalence" "push-on failed %d calls, push-off %d"
          ron.Engine.failed_calls roff.Engine.failed_calls;
      if not (subset (tuples ron.Engine.answers) reference) then
        violate "subset" "pushed answers escape the fault-free reference";
      if (not c.remote) && ron.Engine.bytes_transferred > roff.Engine.bytes_transferred then
        violate "push-equivalence" "pushing inflated local transfer (%d > %d bytes)"
          ron.Engine.bytes_transferred roff.Engine.bytes_transferred
    end;
    None
  with
  | Violation f -> Some f
  | Hang ->
    Some
      {
        oracle = "watchdog";
        detail = Printf.sprintf "an evaluation arm exceeded %.0fs wall-clock" watchdog;
      }
  | e -> Some { oracle = "crash"; detail = Printexc.to_string e }

(* ------------------------------------------------------------------ *)
(* Shrinking: greedy and deterministic, so a replayed seed re-derives
   the same minimal case. A mutation is kept iff the case still fails
   some oracle (not necessarily the same one — the simpler trigger is
   the better report). *)

let shrink_candidates (c : case) =
  List.filter
    (fun c' -> c' <> c)
    [
      (* sequential matching first: a failure that survives without the
         domain fan-out rules the whole parallel layer out of the report *)
      { c with match_jobs = 1 };
      (* routing off next: a failure that survives on one plain shard
         is a simpler report than any scheduler interaction *)
      { c with shards = 1; replicate = false };
      { c with remote = false };
      { c with wire_binary = false };
      { c with jobs = 1 };
      { c with push = false };
      { c with project = false };
      { c with memoize = false };
      { c with fault_permanent = false };
      { c with fault_rate = 0.0; fault_permanent = false };
      { c with max_retries = 0 };
      { c with budget = max 4 (c.budget / 2) };
      { c with scale = max 1 (c.scale / 2) };
      { c with scale = max 1 (c.scale - 1) };
    ]

let shrink ?(watchdog = 30.0) (c : case) (f : failure) : case * failure =
  let best = ref (c, f) in
  let budget = ref 32 in
  let rec go c =
    if !budget > 0 then
      match
        List.find_map
          (fun c' ->
            if !budget <= 0 then None
            else begin
              decr budget;
              match check ~watchdog c' with Some f' -> Some (c', f') | None -> None
            end)
          (shrink_candidates c)
      with
      | Some (c', f') ->
        best := (c', f');
        go c'
      | None -> ()
  in
  go c;
  !best

(* ------------------------------------------------------------------ *)

type fail_report = {
  failed_case : case;
  first_failure : failure;
  shrunk_case : case;
  shrunk_failure : failure;
  shrunk_xml : string;
}

type report = { iterations : int; failure : fail_report option }

let run ?(watchdog = 30.0) ?(log = ignore) ?family ~seed ~iters () =
  let rec go i =
    if i >= iters then { iterations = iters; failure = None }
    else begin
      let case = case_of_seed (seed + i) in
      let case = match family with None -> case | Some f -> { case with family = f } in
      log (Printf.sprintf "[%d/%d] %s" (i + 1) iters (case_to_string case));
      match check ~watchdog case with
      | None -> go (i + 1)
      | Some first_failure ->
        log
          (Printf.sprintf "FAIL %s: %s — shrinking" first_failure.oracle first_failure.detail);
        let shrunk_case, shrunk_failure = shrink ~watchdog case first_failure in
        let inst = Adversary.generate (adversary_config shrunk_case) in
        {
          iterations = i + 1;
          failure =
            Some
              {
                failed_case = case;
                first_failure;
                shrunk_case;
                shrunk_failure;
                shrunk_xml = Doc.to_string ~indent:2 inst.Adversary.doc;
              };
        }
    end
  in
  go 0
