(** Model-based differential fuzzing over {!Axml_workload.Adversary}.

    Each iteration derives a {!case} from a single integer seed —
    hostile document family, strategy (naive or lazy), jobs level, local
    or loopback-remote registry, push, memoization, fault schedule and
    invocation budget — and checks a fixed oracle battery against it:

    - {b subset}: answers ⊆ the fault-free naive reference (Def. 4's
      leniency — missing data loses bindings, never fabricates them);
    - {b complete-flag}: [complete] ⟹ answers equal the reference and
      no call failed; conversely, nothing failed and the budget was not
      exhausted ⟹ [complete];
    - {b budget}: [invoked <= budget], and the unbounded-recursion
      family is always cut incomplete;
    - {b jobs-determinism}: byte-identical serialized answers and equal
      counters at jobs 1 and 4 (simulated clock and bytes compared only
      for local registries — remote costs are wall-clock);
    - {b obs-transparency}: recording a full trace + metrics sink does
      not change the answers;
    - {b reconcile}: report ≡ [eval.*] metrics ≡ trace span rollups;
    - {b push-equivalence} (lazy only): push-on and push-off agree on
      answers, completeness and failure counts, and pushing never
      inflates local transfer bytes;
    - {b projection} (projected cases only): a run under type-based
      projection stays within the reference; when the unprojected twin
      completes, the projected run completes too with identical answer
      tuples and no more invocations; a complete projected run matches
      the reference exactly;
    - {b watchdog}: every arm terminates within a wall-clock deadline —
      a hang is reported as a failure instead of wedging the run;
    - {b crash}: any escaped exception is a failure.

    Sharded and replicated cases (see {!case.shards} and
    {!case.replicate}) run their non-reference arms through an
    {!Axml_sched.Sched} dispatch, so every oracle above doubles as a
    routing-invisibility check: the scheduler may move calls between
    shards but must never change answers, counters or fates.

    Failures are shrunk by a greedy deterministic pass (drop the match
    fan-out first, then the scheduler, remoteness, parallelism, push,
    memoization, faults; halve scale and budget) and
    reported with a one-line replay: because case derivation, generation
    and shrinking are all pure functions of the seed, re-running
    [axml fuzz --seed S --iters 1 --family F] reproduces the failure
    {e and} re-derives the same shrunk instance. *)

module Adversary = Axml_workload.Adversary

type case = {
  case_seed : int;
  family : Adversary.family;
  scale : int;
  lazy_strategy : bool;  (** lazy NFQA; otherwise naive materialization *)
  jobs : int;  (** worker-pool width of the primary arm: 1 or 4 *)
  remote : bool;  (** serve the registry over a loopback TCP peer *)
  push : bool;  (** primary lazy arm ships sub-queries provider-side *)
  memoize : bool;
  fault_rate : float;
  fault_permanent : bool;
  max_retries : int;
  budget : int;  (** [max_calls] for every non-reference arm *)
  project : bool;
      (** run every non-reference arm under type-based projection
          (schema-backed, see {!Axml_project.Project}) and check the
          projected≡full oracle against an unprojected twin *)
  shards : int;
      (** 1 (no scheduler) or 2 — route every non-reference local arm
          through an {!Axml_sched.Sched} dispatch with the service names
          statically split over two shards of the one registry *)
  replicate : bool;
      (** route through two local replicas — the instance's registry
          plus a twin regenerated from the same config, so both draw
          identical fault fates; forces [memoize] off (split caches
          would legitimately diverge from the unsharded arm) *)
  wire_binary : bool;
      (** remote cases only: negotiate the binary frame codec
          ({!Axml_net.Wire.cap_binary}) instead of pinning JSON; every
          remote case additionally checks the binary ≡ JSON
          wire-equivalence oracle with both codecs at jobs = 1 *)
  match_jobs : int;
      (** intra-document match/detect fan-out of the primary lazy arm:
          1 or 4 (always 1 for naive); every lazy case additionally
          checks the parallel ≡ sequential matching oracle with both
          levels at jobs = 1 *)
}

val case_of_seed : int -> case
(** Pure: the same seed always derives the same case. *)

val case_to_string : case -> string
val replay_hint : case -> string
(** The one-line [axml fuzz] invocation reproducing this case. *)

type failure = { oracle : string; detail : string }

val check : ?watchdog:float -> case -> failure option
(** Runs the full oracle battery on one case. [watchdog] (default 30
    wall-clock seconds) bounds every evaluation arm. *)

val shrink : ?watchdog:float -> case -> failure -> case * failure
(** Greedy deterministic minimization: keeps a mutation iff the case
    still fails {e some} oracle. Returns the minimal case and its
    failure. *)

type fail_report = {
  failed_case : case;
  first_failure : failure;
  shrunk_case : case;
  shrunk_failure : failure;
  shrunk_xml : string;  (** the shrunk instance's document, pretty-printed *)
}

type report = {
  iterations : int;  (** iterations completed, the failing one included *)
  failure : fail_report option;
}

val run :
  ?watchdog:float ->
  ?log:(string -> unit) ->
  ?family:Adversary.family ->
  seed:int ->
  iters:int ->
  unit ->
  report
(** Iteration [i] checks [case_of_seed (seed + i)] (with [family]
    forced when given) and stops at the first failure, shrunk. [log]
    receives one progress line per iteration. *)
