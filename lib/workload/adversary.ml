module Tree = Axml_xml.Tree
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Faults = Axml_services.Faults
module Parser = Axml_query.Parser

type family =
  | Bounded_recursion
  | Unbounded_recursion
  | Skewed_fanout
  | Push_keep_all
  | Push_drop_all
  | Deep_nesting

let families =
  [
    ("bounded-recursion", Bounded_recursion);
    ("unbounded-recursion", Unbounded_recursion);
    ("skewed-fanout", Skewed_fanout);
    ("push-keep-all", Push_keep_all);
    ("push-drop-all", Push_drop_all);
    ("deep-nesting", Deep_nesting);
  ]

let family_name f = fst (List.find (fun (_, g) -> g = f) families)

let family_index f =
  let rec go i = function
    | [] -> 0
    | (_, g) :: rest -> if g = f then i else go (i + 1) rest
  in
  go 0 families

type config = {
  family : family;
  seed : int;
  scale : int;
  memoize : bool;
  fault_rate : float;
  fault_permanent : bool;
  fault_seed : int;
  max_retries : int;
}

let default_config =
  {
    family = Skewed_fanout;
    seed = 1;
    scale = 40;
    memoize = false;
    fault_rate = 0.0;
    fault_permanent = false;
    fault_seed = 0;
    max_retries = 2;
  }

type t = {
  doc : Doc.t;
  registry : Registry.t;
  schema : Axml_schema.Schema.t;
  query : Axml_query.Pattern.t;
  config : config;
}

let query_src = Synthetic.query_src

(* Honest types for the six behaviors above and the families below.
   Every generated document (and every splice a behavior can produce)
   conforms, so type-based projection is sound on these instances —
   which is exactly what the projected≡full fuzz oracle leans on. Note
   [noise]'s output type never reaches [payload]: a projector for the
   standard query may drop noise calls (and [filler] elements) while it
   must keep spawn/loop/fetch/bulk chains alive. *)
let schema_src =
  {|functions:
  spawn    = [in: data.data, out: (payload | spawn)]
  loop     = [in: data.data, out: item.loop]
  fetch    = [in: (data | p), out: payload]
  noise    = [in: data, out: filler]
  bulk     = [in: data, out: item*]
  bulkmiss = [in: data, out: filler.item*]
elements:
  r       = sec*
  sec     = (sec | item | filler | noise | loop | bulk | bulkmiss)*
  item    = key.(payload | fetch | spawn)
  key     = data
  payload = data
  filler  = data
  p       = (p | data)*
|}

let e = Tree.element
let txt = Tree.text
let call_e name params = Tree.element Doc.call_elem_name ~attrs:[ ("name", name) ] params

(* ------------------------------------------------------------------ *)
(* Service behaviors: pure functions of the parameter forest, so every
   instance of a config behaves identically at any concurrency level. *)

(* The [n]th parameter, flattened to its text content. *)
let arg n params =
  match List.nth_opt params n with
  | Some tr -> Tree.text_content tr
  | None -> ""

let int_arg n params = match int_of_string_opt (arg n params) with Some i -> i | None -> 0
let blob n = String.make (max 0 n) 'x'

(* Recursion above the matchable [payload]: until the chain bottoms out,
   the partial state holds no payload at all, so a budget-cut evaluation
   loses the binding entirely instead of answering a different subtree —
   the shape the subset oracle needs. *)
let spawn_behavior params =
  let d = int_arg 0 params in
  let site = arg 1 params in
  if d <= 0 then [ e "payload" [ txt ("deep-" ^ site) ] ]
  else [ call_e "spawn" [ txt (string_of_int (d - 1)); txt site ] ]

(* One complete answer item per expansion, plus a fresh sibling call:
   the rewriting never terminates, every budget level yields a prefix of
   the same answer chain. *)
let loop_behavior params =
  let chain = arg 0 params in
  let i = int_arg 1 params in
  [
    e "item"
      [ e "key" [ txt "magic" ]; e "payload" [ txt (Printf.sprintf "loop-%s-%d" chain i) ] ];
    call_e "loop" [ txt chain; txt (string_of_int (i + 1)) ];
  ]

let fetch_behavior params =
  let site = arg 0 params in
  let n = 8 + (Hashtbl.hash site mod 64) in
  [ e "payload" [ txt (Printf.sprintf "v-%s-%s" site (blob n)) ] ]

let noise_behavior _params = [ e "filler" [ txt (blob 16) ] ]

(* Every returned item matches the query: a pushed witness keeps the
   whole result, so pushing saves nothing. *)
let bulk_behavior params =
  let site = arg 0 params in
  let k = 2 + (Hashtbl.hash site mod 3) in
  List.init k (fun i ->
      e "item"
        [ e "key" [ txt "magic" ]; e "payload" [ txt (Printf.sprintf "bulk-%s-%d" site i) ] ])

(* Nothing in the result matches: a pushed witness prunes the response
   to nothing, while the un-pushed run ships the fat filler. *)
let bulkmiss_behavior params =
  let site = arg 0 params in
  let k = 2 + (Hashtbl.hash site mod 3) in
  e "filler" [ txt (blob 512) ]
  :: List.init k (fun i ->
         e "item"
           [ e "key" [ txt "dull" ]; e "payload" [ txt (Printf.sprintf "miss-%s-%d" site i) ] ])

(* ------------------------------------------------------------------ *)
(* Document families *)

let gen_bounded rng scale =
  let sites = 1 + (scale / 12) in
  let secs =
    List.init sites (fun s ->
        let depth = 1 + Random.State.int rng 5 in
        let key = if Random.State.bool rng then "magic" else "dull" in
        e "sec"
          [
            e "item"
              [
                e "key" [ txt key ];
                call_e "spawn" [ txt (string_of_int depth); txt (Printf.sprintf "s%d" s) ];
              ];
          ])
  in
  e "r" secs

let gen_unbounded rng scale =
  let chains = 1 + Random.State.int rng (min 3 (1 + (scale / 30))) in
  e "r"
    (List.init chains (fun c ->
         e "sec" [ call_e "loop" [ txt (Printf.sprintf "c%d" c); txt "0" ] ]))

let gen_skewed rng scale =
  let total = max 4 scale in
  let hot_n = total * 9 / 10 in
  let cold_n = total - hot_n in
  let item s =
    let key = if Random.State.float rng 1.0 < 0.5 then "magic" else "dull" in
    let payload =
      if Random.State.float rng 1.0 < 0.8 then call_e "fetch" [ txt s ]
      else e "payload" [ txt ("x-" ^ s) ]
    in
    e "item" [ e "key" [ txt key ]; payload ]
  in
  let hot = e "sec" (List.init hot_n (fun i -> item (Printf.sprintf "h%d" i))) in
  let colds =
    List.init cold_n (fun i ->
        let filler =
          if Random.State.float rng 1.0 < 0.3 then call_e "noise" [ txt "n" ]
          else e "filler" [ txt "f" ]
        in
        e "sec" [ filler; item (Printf.sprintf "c%d" i) ])
  in
  e "r" (hot :: colds)

let gen_push rng scale ~keep =
  let service = if keep then "bulk" else "bulkmiss" in
  let calls = 1 + (scale / 16) in
  let secs =
    List.init calls (fun i -> e "sec" [ call_e service [ txt (Printf.sprintf "b%d" i) ] ])
  in
  let ext_n = 1 + Random.State.int rng 2 in
  let ext =
    List.init ext_n (fun i ->
        e "sec"
          [
            e "item"
              [ e "key" [ txt "magic" ]; e "payload" [ txt (Printf.sprintf "ext-%d" i) ] ];
          ])
  in
  e "r" (ext @ secs)

let gen_deep rng scale =
  let depth = 64 + (scale * 8) in
  let deep_param d =
    let rec build k acc = if k <= 0 then acc else build (k - 1) (e "p" [ acc ]) in
    build d (txt "leaf")
  in
  let bottom =
    e "item"
      [
        e "key" [ txt "magic" ];
        call_e "fetch" [ deep_param (16 + Random.State.int rng 24) ];
      ]
  in
  let rec wrap k acc = if k <= 0 then acc else wrap (k - 1) (e "sec" [ acc ]) in
  e "r" [ wrap depth bottom ]

(* ------------------------------------------------------------------ *)

let generate cfg =
  let rng = Random.State.make [| 0x5eed; cfg.seed; family_index cfg.family; cfg.scale |] in
  let registry = Registry.create () in
  (* Cost models are drawn in a fixed registration order, before the
     document, so the whole instance is one function of the config. The
     latency and per-byte terms are kept small enough that a healthy
     attempt can never exceed the finite [attempt_timeout] installed for
     the permanent-fault mode: fault fates stay byte-independent, which
     is what makes push-on and push-off runs degrade identically. *)
  let draw_cost () =
    {
      Registry.latency = 0.005 +. Random.State.float rng 0.2;
      per_byte = 1e-8 +. Random.State.float rng 9e-8;
    }
  in
  let reg name behavior =
    Registry.register registry ~name ~cost:(draw_cost ()) ~memoize:cfg.memoize behavior
  in
  reg "spawn" spawn_behavior;
  reg "loop" loop_behavior;
  reg "fetch" fetch_behavior;
  reg "noise" noise_behavior;
  reg "bulk" bulk_behavior;
  reg "bulkmiss" bulkmiss_behavior;
  let root =
    match cfg.family with
    | Bounded_recursion -> gen_bounded rng cfg.scale
    | Unbounded_recursion -> gen_unbounded rng cfg.scale
    | Skewed_fanout -> gen_skewed rng cfg.scale
    | Push_keep_all -> gen_push rng cfg.scale ~keep:true
    | Push_drop_all -> gen_push rng cfg.scale ~keep:false
    | Deep_nesting -> gen_deep rng cfg.scale
  in
  let schedule =
    (if cfg.fault_rate > 0.0 then [ Faults.Flaky cfg.fault_rate ] else [])
    @ if cfg.fault_permanent then [ Faults.Timeout 3.0 ] else []
  in
  if schedule <> [] then Registry.inject_faults registry ~seed:cfg.fault_seed schedule
  else Registry.set_fault_seed registry cfg.fault_seed;
  Registry.set_retry_policy registry
    {
      Registry.max_retries = cfg.max_retries;
      base_backoff = 0.01;
      backoff_factor = 2.0;
      max_backoff = 0.08;
      attempt_timeout = (if cfg.fault_permanent then 0.5 else infinity);
    };
  {
    doc = Doc.of_xml root;
    registry;
    schema = Axml_schema.Schema.of_string schema_src;
    query = Parser.parse query_src;
    config = cfg;
  }

let total_calls t = Doc.count_calls t.doc
