(** Seeded generator of hostile AXML instances.

    "Games for Active XML Revisited" shows which instance families are
    hard for AXML rewriting: recursive service results that re-introduce
    calls, non-terminating rewriting families, and skewed fan-out. This
    module builds those families — plus push-hostile and
    deep-nesting-hostile ones — as deterministic functions of a seed, so
    the termination/budget machinery can be fuzzed and benchmarked
    instead of merely unit-tested.

    Every family answers the same untyped query
    [/r//item\[key="magic"\]/payload!] ({!query_src}), and every
    instance registers the same six services with seed-drawn cost
    models. Service behaviors are pure functions of their parameter
    forest, so two instances generated from the same config are
    byte-identical and evaluate identically at any concurrency level.

    Fault schedules ride on the same config: [fault_rate] installs a
    seeded [Flaky] schedule, [fault_permanent] adds a [Timeout] (total
    outage) plus a finite per-attempt budget — the exact shape the
    differential oracles in {!Axml_fuzz.Fuzz} rely on (fault fates are
    byte-independent, so push-on and push-off runs degrade
    identically). *)

type family =
  | Bounded_recursion
      (** each call expands into another call, [payload] only at the
          bottom of a per-site bounded chain *)
  | Unbounded_recursion
      (** every expansion yields one answer item and a fresh call — the
          rewriting never terminates; only the budget cuts it *)
  | Skewed_fanout
      (** one hot subtree holds ~90% of the fetch calls, the rest is
          spread over cold sections with noise calls *)
  | Push_keep_all
      (** bulk services whose results are entirely witness-relevant: the
          pushed pattern prunes nothing *)
  | Push_drop_all
      (** bulk services whose results are entirely irrelevant filler:
          the pushed pattern prunes everything *)
  | Deep_nesting
      (** the single matching item sits under hundreds of nested
          sections, with deeply-nested call parameters *)

val families : (string * family) list
(** Stable name → family, the [--family] CLI vocabulary. *)

val family_name : family -> string

type config = {
  family : family;
  seed : int;  (** drives document shape and cost models *)
  scale : int;  (** sites / fan-out width / nesting units *)
  memoize : bool;  (** register every service with client-side caching *)
  fault_rate : float;  (** [Flaky] probability; [0.] = healthy *)
  fault_permanent : bool;
      (** add a [Timeout 3.0] outage and a finite attempt budget *)
  fault_seed : int;  (** keys the fault schedule PRNG *)
  max_retries : int;
}

val default_config : config
(** [Skewed_fanout], seed 1, scale 40, no memoization, healthy. *)

type t = {
  doc : Axml_doc.t;
  registry : Axml_services.Registry.t;
  schema : Axml_schema.Schema.t;
      (** honest types for every family and behavior: generated
          documents and all splices conform, so type-based projection
          is sound on adversary instances *)
  query : Axml_query.Pattern.t;
  config : config;
}

val query_src : string
(** [/r//item\[key="magic"\]/payload!] — shared with {!Synthetic}. *)

val generate : config -> t
(** Builds a fresh instance: same config, same bytes, always. The
    document is mutable (evaluation rewrites it in place), so each
    evaluation arm should generate its own copy. *)

val total_calls : t -> int
(** Visible [<axml:call>] nodes in the just-generated document (calls
    introduced later by recursive results are not counted). *)
