(** The unified evaluation runtime.

    Both evaluation strategies — naive materialization (§1 of the paper,
    {!naive_run}) and the NFQA lazy evaluator (§4,
    {!Axml_core.Lazy_eval.run}) — are loops that pick batches of pending
    calls; the engine owns everything below that choice:

    - the single {!report} record and its {!report_to_json} wire format;
    - the invocation driver: the thread-safe request half against
      {!Axml_services.Registry.invoke} (optionally dispatched on an
      {!Axml_exec.Exec} worker pool), and the sequential in-order apply
      half — document splicing, counters, and the strategy's
      {!on_replace} hook;
    - the §4.4 whole-batch-fits-budget pooling guard: a batch is only
      dispatched concurrently when it fits the remaining call budget in
      full, so the budget cuts at the same call at every [--jobs] level;
    - failed-call tombstones and graceful-degradation accounting — a
      call whose retry budget is exhausted stays in the document as an
      unexpanded function node, is never re-attempted, and only costs
      bindings (Def. 4's leniency), never fabricates them;
    - all [eval.*] span and metric emission, so the report ≡ metrics ≡
      trace reconciliation invariant lives in exactly one place.

    Future strategies (sharded registries, result caching, alternate
    backends) plug into the same driver instead of growing a third
    runtime. *)

(** {2 The one report} *)

(** The single evaluation report, shared by every strategy. Fields a
    strategy does not use stay at zero: naive runs report [pushed],
    [passes], [relevance_evals], [candidates_checked], [layer_count] and
    [analysis_seconds] as 0. *)
type report = {
  answers : Axml_query.Eval.binding list;
  invoked : int;
  pushed : int;
  rounds : int;  (** invocation rounds (batches or single calls) *)
  passes : int;  (** full evaluation sweeps over a layer *)
  relevance_evals : int;  (** NFQ/LPQ evaluations performed *)
  candidates_checked : int;  (** F-guide candidates filtered *)
  layer_count : int;
  simulated_seconds : float;  (** service latency + transfer, aggregated *)
  analysis_seconds : float;  (** CPU time spent detecting relevant calls *)
  bytes_transferred : int;
  retries : int;  (** retried service attempts, summed over invocations *)
  timeouts : int;  (** attempts classified as timeouts *)
  failed_calls : int;
      (** calls whose retry budget was exhausted; each stays in the
          document as an unexpanded function node *)
  backoff_seconds : float;  (** simulated seconds spent backing off *)
  full_nodes : int;
      (** nodes handed to the projector (initial document plus every
          spliced result forest); 0 when no projector is attached *)
  projected_nodes : int;  (** nodes surviving projection; 0 without one *)
  projected_bytes_saved : int;
      (** serialized XML bytes of the subtrees projection dropped *)
  sharded_calls : int;
      (** successful calls placed on a named shard by a scheduler
          dispatch; 0 when dispatch goes straight to the registry *)
  rebalanced_calls : int;
      (** calls the replica balancer placed somewhere other than the
          first eligible shard (load- or cost-driven moves) *)
  rerouted_calls : int;
      (** failed-replica attempts salvaged by re-routing to another
          replica before degrading to [complete = false] *)
  view_rebuild_nodes : int;
      (** snapshot-view nodes (re)indexed after {!create}'s initial
          build: the spliced-region patches of
          {!Axml_doc.replace_call} plus any full rebuilds forced by
          out-of-band edits — the cost of keeping the pure view current *)
  parallel_match_batches : int;
      (** intra-document parallel match/detect dispatches performed by
          the strategy ({!Axml_query.Eval.par_batches}); 0 when matching
          ran sequentially *)
  complete : bool;
      (** the evaluation finished within budget and no call permanently
          failed: the answers are the full snapshot result. When [false]
          because of failures, the answers are still sound — a subset of
          the full result (missing data only loses bindings). *)
}

val report_to_json : report -> Axml_obs.Json.t
(** The full report as JSON — the [--report-json] and peer wire format:
    answer tuples (variable bindings plus result XML) and every counter. *)

(** {2 Call helpers} *)

val call_params : Axml_doc.node -> Axml_xml.Tree.forest
(** A call's parameter forest, serialized (nested calls included as
    [<axml:call>] elements). *)

val call_name_exn : Axml_doc.node -> string
(** Raises [Invalid_argument] on data nodes. *)

(** {2 Routing} *)

type route = {
  shard : string option;  (** the shard the call was placed on, if any *)
  rebalanced : bool;  (** placed off the first eligible shard *)
  rerouted : int;  (** failed replica attempts salvaged en route *)
}
(** Where a dispatch actually sent a call. The registry-direct default
    reports {!no_route}; {!Axml_sched.Sched} reports its placement so
    the engine can account [sharded_calls] / [rebalanced_calls] /
    [rerouted_calls] without knowing the scheduler exists. *)

val no_route : route

type dispatch =
  name:string ->
  params:Axml_xml.Tree.forest ->
  ?push:Axml_query.Pattern.node ->
  obs:Axml_obs.Obs.t ->
  unit ->
  Axml_xml.Tree.forest * Axml_services.Registry.invocation * route
(** The pluggable request half: same contract as
    {!Axml_services.Registry.invoke} (raises
    [Registry.Service_failure inv] after retry exhaustion, must be
    thread-safe — the engine calls it from pool workers), plus the
    {!route} it chose. *)

(** {2 The invocation driver} *)

type t
(** One evaluation in progress: the document being rewritten, the
    registry it draws from, tombstones, every counter, and the obs
    sinks. Not thread-safe — drive it from one coordinating thread; the
    engine itself fans requests out to the pool. *)

(** How a round charges the simulated clock: a parallel batch costs its
    slowest member ([Max], §4.4), sequential invocations add up
    ([Sum]). Only [Max] rounds are eligible for pool dispatch. *)
type accounting = Max | Sum

val create :
  ?max_calls:int ->
  ?pool:Axml_exec.Exec.pool ->
  ?obs:Axml_obs.Obs.t ->
  ?projector:Axml_project.Project.t ->
  ?dispatch:dispatch ->
  Axml_services.Registry.t ->
  Axml_doc.t ->
  t
(** [max_calls] defaults to 100k; [obs] to disabled. Builds the initial
    snapshot view (so later splices patch it incrementally) and records
    the [view_rebuild_nodes] baseline. [projector] (default: none)
    projects the document in place before the strategy sees it, and
    projects every service-result forest {e before} it is spliced
    ({!Axml_project.Project.spliced_forest}) — so strategies only ever
    observe the projected document, and the view patch stays valid —
    accumulating the [full_nodes] /
    [projected_nodes] / [projected_bytes_saved] report fields.
    [dispatch] (default: straight to [Registry.invoke] on the given
    registry) replaces the request half — this is where a scheduler
    plugs in routing without touching any strategy. *)

val on_replace : t -> (invoked:Axml_doc.node -> added:Axml_doc.node list -> unit) -> unit
(** Strategy hook run after each successful splice, on the coordinating
    thread, before the counters — the lazy evaluator resets its shared
    evaluation context, maintains the F-guide and scans the added nodes
    for new function names here. Default: nothing. *)

val round :
  ?attrs:(string * Axml_obs.Trace.attr) list ->
  ?push:Axml_query.Pattern.node ->
  accounting:accounting ->
  t ->
  Axml_doc.node list ->
  float
(** One invocation round: bumps the round counters, wraps the batch in
    an [eval.round] span carrying [attrs] (closed with its
    [batch_cost_s]), invokes every call (concurrently when a pool is
    attached, the accounting is [Max], the batch has at least two calls
    and fits the remaining budget in full), charges the simulated clock
    and returns the batch cost. Calls reached with the budget exhausted
    are skipped and set {!budget_hit}. [push] ships the optimistic
    subquery with every call of the round (§7). *)

val invoked : t -> int
val failed_calls : t -> int
val permanently_failed : t -> int -> bool
(** Whether the node with this id is a failed-call tombstone — excluded
    from future batches by every strategy. *)

val budget_hit : t -> bool
(** A call was skipped because [max_calls] was already spent. *)

val simulated_seconds : t -> float

val finish :
  ?passes:int ->
  ?relevance_evals:int ->
  ?candidates_checked:int ->
  ?layer_count:int ->
  ?analysis_seconds:float ->
  ?parallel_match_batches:int ->
  t ->
  root:Axml_obs.Trace.span ->
  answers:Axml_query.Eval.binding list ->
  budget_ok:bool ->
  report
(** Emits the final gauges ([eval.answers], [eval.complete],
    [eval.view_rebuild_nodes], [eval.parallel_match_batches],
    [eval.simulated_seconds], plus [eval.layer_count] /
    [eval.analysis_seconds] when given), closes the strategy's [root]
    span with the summary attributes, and assembles the report.
    [complete] is [budget_ok] and no tombstones; [view_rebuild_nodes] is
    computed by the engine ({!Axml_doc.view_indexed_total} differenced
    against {!create}'s baseline). The optional analysis fields are the
    strategy's own counters; absent ones report zero (and [passes] is
    also omitted from the root span's attributes, matching the
    strategies that never sweep). *)

(** {2 The naive strategy}

    §1's baseline as a degenerate engine client: every visible call is
    relevant, one round per fixpoint iteration, until no visible call
    remains or the budget cuts. With [parallel] (default), each round is
    one [Max]-accounted batch (pool-eligible); otherwise costs add up
    sequentially. *)

val naive_run :
  ?max_calls:int ->
  ?parallel:bool ->
  ?pool:Axml_exec.Exec.pool ->
  ?obs:Axml_obs.Obs.t ->
  ?projector:Axml_project.Project.t ->
  ?dispatch:dispatch ->
  Axml_services.Registry.t ->
  Axml_query.Pattern.t ->
  Axml_doc.t ->
  report
