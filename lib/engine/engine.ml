(** The unified evaluation runtime. Every evaluation strategy — naive
    materialization (§1) and the NFQA lazy evaluator (§4) alike — is a
    loop that picks batches of pending calls; the engine owns everything
    below that choice: the registry exchange (thread-safe request half,
    optionally on a worker pool), the sequential in-order apply half
    (document splicing, counters, strategy hooks), the §4.4
    whole-batch-fits-budget pooling guard, failed-call tombstones and
    graceful-degradation accounting, the simulated clock, and all
    [eval.*] span/metric emission — so the report ≡ metrics ≡ trace
    reconciliation invariant lives in exactly one place. *)

module P = Axml_query.Pattern
module Eval = Axml_query.Eval
module Doc = Axml_doc
module Registry = Axml_services.Registry
module Obs = Axml_obs.Obs
module Trace = Axml_obs.Trace
module Metrics = Axml_obs.Metrics
module Exec = Axml_exec.Exec
module Project = Axml_project.Project

let log_src = Logs.Src.create "axml.engine" ~doc:"unified evaluation engine"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* The one report *)

(** The single evaluation report. Strategies that do not perform
    relevance analysis (naive) leave the analysis fields at zero. *)
type report = {
  answers : Eval.binding list;
  invoked : int;
  pushed : int;
  rounds : int;  (** invocation rounds (batches or single calls) *)
  passes : int;  (** full evaluation sweeps over a layer *)
  relevance_evals : int;  (** NFQ/LPQ evaluations performed *)
  candidates_checked : int;  (** F-guide candidates filtered *)
  layer_count : int;
  simulated_seconds : float;  (** service latency + transfer, aggregated *)
  analysis_seconds : float;  (** CPU time spent detecting relevant calls *)
  bytes_transferred : int;
  retries : int;  (** retried service attempts, summed over invocations *)
  timeouts : int;  (** attempts classified as timeouts *)
  failed_calls : int;  (** calls left unexpanded after retry exhaustion *)
  backoff_seconds : float;  (** simulated seconds spent backing off *)
  full_nodes : int;  (** nodes handed to the projector; 0 without one *)
  projected_nodes : int;  (** nodes surviving projection; 0 without one *)
  projected_bytes_saved : int;  (** serialized bytes of dropped subtrees *)
  sharded_calls : int;  (** calls placed on a named shard; 0 unsharded *)
  rebalanced_calls : int;  (** calls the balancer moved off shard 0 *)
  rerouted_calls : int;  (** failed-replica calls salvaged elsewhere *)
  view_rebuild_nodes : int;
      (** snapshot-view nodes (re)indexed after the initial build:
          incremental splice patches plus any full rebuilds *)
  parallel_match_batches : int;
      (** intra-document parallel match dispatches; 0 when sequential *)
  complete : bool;  (** the answers are the full snapshot result *)
}

let report_to_json (r : report) : Axml_obs.Json.t =
  let module J = Axml_obs.Json in
  J.Obj
    [
      ( "answers",
        J.List
          (List.map
             (fun (b : Eval.binding) ->
               J.Obj
                 [
                   ("vars", J.Obj (List.map (fun (x, v) -> (x, J.String v)) b.Eval.vars));
                   ( "results",
                     J.List
                       (List.map
                          (fun (_, n) ->
                            J.String (Axml_xml.Print.to_string (Doc.node_to_xml n)))
                          b.Eval.results) );
                 ])
             r.answers) );
      ("invoked", J.Int r.invoked);
      ("pushed", J.Int r.pushed);
      ("rounds", J.Int r.rounds);
      ("passes", J.Int r.passes);
      ("relevance_evals", J.Int r.relevance_evals);
      ("candidates_checked", J.Int r.candidates_checked);
      ("layer_count", J.Int r.layer_count);
      ("simulated_seconds", J.Float r.simulated_seconds);
      ("analysis_seconds", J.Float r.analysis_seconds);
      ("bytes_transferred", J.Int r.bytes_transferred);
      ("retries", J.Int r.retries);
      ("timeouts", J.Int r.timeouts);
      ("failed_calls", J.Int r.failed_calls);
      ("backoff_seconds", J.Float r.backoff_seconds);
      ("full_nodes", J.Int r.full_nodes);
      ("projected_nodes", J.Int r.projected_nodes);
      ("projected_bytes_saved", J.Int r.projected_bytes_saved);
      ("sharded_calls", J.Int r.sharded_calls);
      ("rebalanced_calls", J.Int r.rebalanced_calls);
      ("rerouted_calls", J.Int r.rerouted_calls);
      ("view_rebuild_nodes", J.Int r.view_rebuild_nodes);
      ("parallel_match_batches", J.Int r.parallel_match_batches);
      ("complete", J.Bool r.complete);
    ]

(* ------------------------------------------------------------------ *)
(* Call helpers *)

let call_params (call : Doc.node) = List.map Doc.node_to_xml call.Doc.children

let call_name_exn (call : Doc.node) =
  match call.Doc.label with
  | Doc.Call { fname; _ } -> fname
  | Doc.Elem _ | Doc.Data _ -> invalid_arg "not a function node"

(* ------------------------------------------------------------------ *)
(* Routing *)

(* Where a call actually went. The default (registry-direct) dispatch
   reports [no_route]; a scheduler reports the shard it picked, whether
   the balancer moved the call off the first eligible shard, and how
   many failed replica attempts were salvaged by re-routing before the
   result came back. Only successful dispatches carry a route — a call
   that permanently fails has no placement to report. *)
type route = { shard : string option; rebalanced : bool; rerouted : int }

let no_route = { shard = None; rebalanced = false; rerouted = 0 }

type dispatch =
  name:string ->
  params:Axml_xml.Tree.forest ->
  ?push:P.node ->
  obs:Obs.t ->
  unit ->
  Axml_xml.Tree.forest * Registry.invocation * route

(* ------------------------------------------------------------------ *)
(* The invocation driver *)

type t = {
  registry : Registry.t;
  dispatch : dispatch;
  doc : Doc.t;
  obs : Obs.t;
  pool : Exec.pool option;
  max_calls : int;
  (* calls whose retry budget was exhausted: left in place as unexpanded
     function nodes, never re-attempted *)
  failed : (int, unit) Hashtbl.t;
  projector : Project.t option;
  mutable projection : Project.stats;
  (* [Doc.view_indexed_total] right after [create] built the initial
     snapshot: [finish] differences against it so the report counts only
     the view work done during the run *)
  view_baseline : int;
  mutable on_replace : invoked:Doc.node -> added:Doc.node list -> unit;
  mutable invoked : int;
  mutable pushed : int;
  mutable rounds : int;
  mutable simulated_seconds : float;
  mutable bytes : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable backoff_seconds : float;
  mutable sharded_calls : int;
  mutable rebalanced_calls : int;
  mutable rerouted_calls : int;
  mutable budget_hit : bool;
}

type accounting = Max | Sum

let registry_dispatch registry : dispatch =
 fun ~name ~params ?push ~obs () ->
  let result, inv = Registry.invoke registry ~name ~params ?push ~obs () in
  (result, inv, no_route)

let create ?(max_calls = 100_000) ?pool ?(obs = Obs.null) ?projector ?dispatch registry
    (doc : Doc.t) =
  (* Layer 1: project the initial document before any strategy sees it. *)
  let projection =
    match projector with None -> Project.zero_stats | Some p -> Project.doc p doc
  in
  (* Index the (projected) document once up front: strategies hit this
     cached snapshot, and every splice from here on patches it
     incrementally instead of forcing full rebuilds. *)
  ignore (Doc.View.snapshot doc);
  {
    registry;
    dispatch = (match dispatch with Some d -> d | None -> registry_dispatch registry);
    doc;
    obs;
    pool;
    max_calls;
    failed = Hashtbl.create 8;
    projector;
    projection;
    view_baseline = Doc.view_indexed_total doc;
    on_replace = (fun ~invoked:_ ~added:_ -> ());
    invoked = 0;
    pushed = 0;
    rounds = 0;
    simulated_seconds = 0.0;
    bytes = 0;
    retries = 0;
    timeouts = 0;
    backoff_seconds = 0.0;
    sharded_calls = 0;
    rebalanced_calls = 0;
    rerouted_calls = 0;
    budget_hit = false;
  }

let on_replace t f = t.on_replace <- f
let invoked t = t.invoked
let failed_calls t = Hashtbl.length t.failed
let permanently_failed t id = Hashtbl.mem t.failed id
let budget_hit t = t.budget_hit
let simulated_seconds t = t.simulated_seconds

let account t (inv : Registry.invocation) =
  t.retries <- t.retries + inv.Registry.retries;
  t.timeouts <- t.timeouts + inv.Registry.timeouts;
  t.backoff_seconds <- t.backoff_seconds +. inv.Registry.backoff_seconds;
  t.bytes <- t.bytes + inv.Registry.request_bytes + inv.Registry.response_bytes;
  (* the mirror of the report counters — same increments, so the metrics
     snapshot reconciles with the report exactly *)
  let m = t.obs.Obs.metrics in
  Metrics.incr m ~by:inv.Registry.retries "eval.retries";
  Metrics.incr m ~by:inv.Registry.timeouts "eval.timeouts";
  Metrics.add m "eval.backoff_seconds" inv.Registry.backoff_seconds;
  Metrics.incr m ~by:(inv.Registry.request_bytes + inv.Registry.response_bytes) "eval.bytes"

(* One invocation is split in two halves. [request] is the worker-safe
   half: just the registry exchange (thread-safe, only reads the
   document), with failures captured as data. [apply] is the sequential
   half: document mutation, the strategy's [on_replace] hook and every
   counter — always run on the coordinating thread, in batch input
   order, so neither the engine nor the strategy state needs locks. *)

type outcome =
  | O_ok of Axml_xml.Tree.forest * Registry.invocation * route
  | O_failed of Registry.invocation

let request t ~obs ?push (call : Doc.node) =
  match t.dispatch ~name:(call_name_exn call) ~params:(call_params call) ?push ~obs () with
  | result, inv, route -> O_ok (result, inv, route)
  | exception Registry.Service_failure inv -> O_failed inv

let apply t ?push (call : Doc.node) outcome =
  let name = call_name_exn call in
  match outcome with
  | O_ok (result, inv, route) ->
    Log.debug (fun m ->
        m "invoke [%d]%s%s%s"
          (match call.Doc.label with Doc.Call { call_id; _ } -> call_id | _ -> -1)
          name
          (if push = None then "" else " (pushed)")
          (match route.shard with None -> "" | Some s -> " @" ^ s));
    (* Layer 2: project the freshly materialized result {e before} it is
       spliced, so F-guides and function scans only ever observe the
       projected document — and so the splice is the only mutation,
       keeping the incremental snapshot-view patch valid (post-splice
       pruning would invalidate it and force full O(n) rebuilds). *)
    let result =
      match (t.projector, call.Doc.parent) with
      | Some p, Some parent ->
        let kept, st = Project.spliced_forest p ~parent result in
        t.projection <- Project.add_stats t.projection st;
        kept
      | _ -> result
    in
    let added = Doc.replace_call t.doc call result in
    t.on_replace ~invoked:call ~added;
    t.invoked <- t.invoked + 1;
    Metrics.incr t.obs.Obs.metrics "eval.invoked";
    if inv.Registry.pushed then begin
      t.pushed <- t.pushed + 1;
      Metrics.incr t.obs.Obs.metrics "eval.pushed"
    end;
    (match route.shard with
    | None -> ()
    | Some _ ->
      t.sharded_calls <- t.sharded_calls + 1;
      Metrics.incr t.obs.Obs.metrics "eval.sharded_calls");
    if route.rebalanced then begin
      t.rebalanced_calls <- t.rebalanced_calls + 1;
      Metrics.incr t.obs.Obs.metrics "eval.rebalanced_calls"
    end;
    if route.rerouted > 0 then begin
      t.rerouted_calls <- t.rerouted_calls + route.rerouted;
      Metrics.incr t.obs.Obs.metrics ~by:route.rerouted "eval.rerouted_calls"
    end;
    account t inv;
    inv.Registry.cost
  | O_failed inv ->
    (* Graceful degradation: the call stays in place as an unexpanded
       function node; the answer may only lose bindings (Def. 4). *)
    Log.debug (fun m ->
        m "invoke [%d]%s permanently failed (%d retries, %d timeouts)"
          (match call.Doc.label with Doc.Call { call_id; _ } -> call_id | _ -> -1)
          name inv.Registry.retries inv.Registry.timeouts);
    Hashtbl.replace t.failed call.Doc.id ();
    Metrics.incr t.obs.Obs.metrics "eval.failed_calls";
    account t inv;
    inv.Registry.cost

(* A batch of calls. With a pool and [Max] accounting (a §4.4 parallel
   batch), the members' registry exchanges run concurrently — condition
   ★ guarantees no member's parameters depend on another member's
   result, so requesting against the pre-batch document is exactly what
   the sequential order does too — and the apply phase then runs
   sequentially in input order, which keeps answers, counters and
   traces identical to the sequential path. The pool is only used when
   the whole batch fits in the remaining call budget, so the budget
   cuts at the same call at every jobs level. A call reached with the
   budget exhausted is skipped and marks [budget_hit]. *)
let invoke_batch t ?push ~accounting calls =
  let combine worst cost =
    match accounting with Max -> Float.max worst cost | Sum -> worst +. cost
  in
  let pooled =
    match (t.pool, accounting) with
    | Some pool, Max
      when Exec.jobs pool > 1
           && List.length calls > 1
           && t.invoked + List.length calls <= t.max_calls ->
      Some pool
    | _ -> None
  in
  match pooled with
  | None ->
    List.fold_left
      (fun worst call ->
        if t.invoked >= t.max_calls then begin
          t.budget_hit <- true;
          worst
        end
        else combine worst (apply t ?push call (request t ~obs:t.obs ?push call)))
      0.0 calls
  | Some pool ->
    let outcomes =
      Exec.map_batch pool
        (fun call ->
          let obs = Obs.fork t.obs in
          (obs, request t ~obs ?push call))
        calls
    in
    List.fold_left2
      (fun worst call (obs, outcome) ->
        Obs.join t.obs obs;
        combine worst (apply t ?push call outcome))
      0.0 calls outcomes

let round ?(attrs = []) ?push ~accounting t calls =
  t.rounds <- t.rounds + 1;
  Metrics.incr t.obs.Obs.metrics "eval.rounds";
  let tr = t.obs.Obs.trace in
  let span =
    if Trace.enabled tr then Trace.open_span tr ~attrs "eval.round" else Trace.none
  in
  let batch_cost = invoke_batch t ?push ~accounting calls in
  if Trace.enabled tr then
    Trace.close_span tr ~attrs:[ ("batch_cost_s", Trace.Float batch_cost) ] span;
  t.simulated_seconds <- t.simulated_seconds +. batch_cost;
  batch_cost

(* ------------------------------------------------------------------ *)
(* Finishing: final gauges, the root span, the report *)

let finish ?passes ?(relevance_evals = 0) ?(candidates_checked = 0) ?layer_count
    ?analysis_seconds ?(parallel_match_batches = 0) t ~root ~answers ~budget_ok =
  let complete = budget_ok && Hashtbl.length t.failed = 0 in
  let view_rebuild_nodes = Doc.view_indexed_total t.doc - t.view_baseline in
  if Obs.enabled t.obs then begin
    let m = t.obs.Obs.metrics in
    (match layer_count with
    | Some lc -> Metrics.set m "eval.layer_count" (float_of_int lc)
    | None -> ());
    Metrics.set m "eval.answers" (float_of_int (List.length answers));
    Metrics.set m "eval.full_nodes" (float_of_int t.projection.Project.full_nodes);
    Metrics.set m "eval.projected_nodes" (float_of_int t.projection.Project.kept_nodes);
    Metrics.set m "eval.projected_bytes_saved"
      (float_of_int t.projection.Project.bytes_saved);
    Metrics.set m "eval.complete" (if complete then 1.0 else 0.0);
    Metrics.set m "eval.view_rebuild_nodes" (float_of_int view_rebuild_nodes);
    Metrics.set m "eval.parallel_match_batches" (float_of_int parallel_match_batches);
    Metrics.set m "eval.simulated_seconds" t.simulated_seconds;
    (match analysis_seconds with
    | Some a -> Metrics.set m "eval.analysis_seconds" a
    | None -> ());
    Trace.close_span t.obs.Obs.trace
      ~attrs:
        ([ ("invoked", Trace.Int t.invoked); ("rounds", Trace.Int t.rounds) ]
        @ (match passes with Some p -> [ ("passes", Trace.Int p) ] | None -> [])
        @ [
            ("bytes", Trace.Int t.bytes);
            ("simulated_s", Trace.Float t.simulated_seconds);
            ("complete", Trace.Bool complete);
          ])
      root
  end;
  {
    answers;
    invoked = t.invoked;
    pushed = t.pushed;
    rounds = t.rounds;
    passes = Option.value passes ~default:0;
    relevance_evals;
    candidates_checked;
    layer_count = Option.value layer_count ~default:0;
    simulated_seconds = t.simulated_seconds;
    analysis_seconds = Option.value analysis_seconds ~default:0.0;
    bytes_transferred = t.bytes;
    retries = t.retries;
    timeouts = t.timeouts;
    failed_calls = Hashtbl.length t.failed;
    backoff_seconds = t.backoff_seconds;
    full_nodes = t.projection.Project.full_nodes;
    projected_nodes = t.projection.Project.kept_nodes;
    projected_bytes_saved = t.projection.Project.bytes_saved;
    sharded_calls = t.sharded_calls;
    rebalanced_calls = t.rebalanced_calls;
    rerouted_calls = t.rerouted_calls;
    view_rebuild_nodes;
    parallel_match_batches;
    complete;
  }

(* ------------------------------------------------------------------ *)
(* The naive strategy (§1): every visible call is relevant, one round
   per fixpoint iteration, until no visible call remains (or the
   budget cuts). A degenerate client of the driver above. *)

let naive_run ?max_calls ?(parallel = true) ?pool ?(obs = Obs.null) ?projector ?dispatch
    registry (q : P.t) (d : Doc.t) : report =
  let tr = obs.Obs.trace in
  let root = if Trace.enabled tr then Trace.open_span tr "eval.naive" else Trace.none in
  let t = create ?max_calls ?pool ~obs ?projector ?dispatch registry d in
  let continue = ref true in
  while !continue do
    let calls =
      List.filter
        (fun (c : Doc.node) -> not (permanently_failed t c.Doc.id))
        (Doc.visible_function_nodes d)
    in
    if calls = [] then continue := false
    else begin
      ignore
        (round t
           ~accounting:(if parallel then Max else Sum)
           ~attrs:
             [ ("calls", Trace.Int (List.length calls)); ("parallel", Trace.Bool parallel) ]
           calls);
      if t.budget_hit then continue := false
    end
  done;
  let answers = Eval.eval q d in
  finish t ~root ~answers ~budget_ok:(not t.budget_hit)
