(** Type-based document projection (Benzaken–Castagna–Colazzo–Nguyễn,
    adapted to Active XML).

    From a query pattern and (optionally) a schema, compile a structural
    projector that drops every subtree the query can never touch. The
    needed-path language is the alternation of the root-to-node path
    regexes of the pattern ({!Axml_query.Pattern.linear_regex} per
    node), turned into a Glushkov NFA over the common alphabet of the
    query and the schema; a document node is kept iff its label path is

    - {b a hit}: a prefix of the pattern accepted at this node (it can
      be the image of a pattern node), or
    - {b under a result image}: the path is accepted by the automaton of
      the result nodes — the whole subtree is the answer serialization,
      so it is kept verbatim, or
    - {b live}: some extension of the path that the schema's content
      models admit below this label reaches acceptance. Liveness is a
      least fixpoint over NFA states × schema symbols; labels the schema
      does not constrain are treated as unconstrained (graceful
      degradation — an absent or partial schema only keeps more).

    The Active XML twist: a service-call function node is kept whenever
    the transitive closure of its declared result type (root symbols of
    the output content model, expanded through returned function
    symbols) intersects the needed set at the call's position — a
    pruned-away subtree must never hide a relevant call. Calls with no
    declared signature are kept whenever their position is not dead;
    kept calls keep their parameter forest verbatim.

    Soundness contract: on documents that conform to the schema, the
    query's answers (variable bindings and serialized result subtrees)
    on the projected document equal those on the full document — at
    every intermediate rewriting stage, provided call results are
    re-projected as they are spliced (see {!spliced}). *)

type t

type stats = {
  full_nodes : int;  (** nodes examined (pre-projection) *)
  kept_nodes : int;  (** nodes surviving projection *)
  bytes_saved : int;
      (** exact serialized-XML shrinkage: [byte_size before] minus
          [byte_size after] (dropped subtrees plus the shells of
          elements emptied by the drop) *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

val compile :
  ?schema:Axml_schema.Schema.t ->
  ?anchor:[ `Root | `Anywhere ] ->
  Axml_query.Pattern.t ->
  t
(** [compile ?schema q] builds the projector for [q]. [`Root] (default)
    anchors the pattern root at the document root, matching
    {!Axml_query.Eval.eval}; [`Anywhere] prefixes every path with [_*],
    for projecting service-result forests against a pushed pattern whose
    matches may start at any returned root. Without a schema, liveness
    degrades to NFA reachability and every call is kept: projection is
    weaker but still sound. *)

val tree : t -> Axml_xml.Tree.t -> Axml_xml.Tree.t * stats
(** Pure projection of a serialized tree ([<axml:call>] elements are
    treated as function nodes). The root is never dropped: a dead root
    keeps its empty shell. *)

val forest : t -> Axml_xml.Tree.forest -> Axml_xml.Tree.forest * stats
(** Projection of a service-result forest; dead roots are removed
    entirely (compile with [~anchor:`Anywhere] for this use). *)

val doc : t -> Axml_doc.t -> stats
(** In-place projection of a live document: dropped subtrees are
    detached with {!Axml_doc.remove_node}. *)

val spliced_forest :
  t -> parent:Axml_doc.node -> Axml_xml.Tree.forest -> Axml_xml.Tree.forest * stats
(** [spliced_forest t ~parent f] projects a service-result forest
    {e before} it is spliced under [parent] (the invoked call's parent):
    the state context is recomputed along the root-to-[parent] path and
    each tree kept, pruned or dropped exactly as {!spliced} would after
    the fact — same survivors, same stats — without mutating the
    document post-splice, so the engine's incremental snapshot-view
    patch stays valid. *)

val spliced : t -> Axml_doc.t -> added:Axml_doc.node list -> Axml_doc.node list * stats
(** [spliced t d ~added] re-projects the nodes just spliced into [d] by
    {!Axml_doc.replace_call} (all sharing one parent): the state context
    is recomputed along the root-to-parent path, each added root is then
    kept, pruned or detached accordingly. Returns the surviving roots.
    If some ancestor lies under a result image, everything is kept. *)

val keeps_call : t -> Axml_doc.t -> fname:string -> parent:Axml_doc.node -> bool
(** Would a call to [fname] spliced under [parent] be kept? (white-box
    hook for tests) *)
