(* Type-based document projection (see project.mli for the contract).

   The projector is one NFA walk: document labels are consumed root-down
   against the alternation of the pattern's root-to-node path regexes,
   and a node survives iff its state set is accepting (hit), accepting
   in the result-node automaton (keep the whole subtree), or live — some
   schema-admissible extension below its label can still reach
   acceptance. Liveness is precomputed once per compile as a least
   fixpoint over NFA states × alphabet symbols, threading through
   function symbols via the transitive closure of their declared output
   root symbols. *)

module Regex = Axml_automata.Regex
module Nfa = Axml_automata.Nfa
module Schema = Axml_schema.Schema
module P = Axml_query.Pattern
module Tree = Axml_xml.Tree
module Print = Axml_xml.Print
module Doc = Axml_doc

type stats = { full_nodes : int; kept_nodes : int; bytes_saved : int }

let zero_stats = { full_nodes = 0; kept_nodes = 0; bytes_saved = 0 }

let add_stats a b =
  {
    full_nodes = a.full_nodes + b.full_nodes;
    kept_nodes = a.kept_nodes + b.kept_nodes;
    bytes_saved = a.bytes_saved + b.bytes_saved;
  }

type t = {
  hit : Nfa.t;  (** alternation of all pattern-node path regexes *)
  sub : Nfa.t option;  (** result nodes only; [None] when the pattern has none *)
  idx : (string, int) Hashtbl.t;
  other_ix : int;
  data_ix : int;
  schema : Schema.t option;
  fun_nodes : bool;  (** pattern queries function nodes: never drop a call *)
  live : bool array array;  (** [live.(state).(sym)] over the hit automaton *)
  can_reach : bool array;  (** accepting reachable in ≥ 1 steps (any labels) *)
  out_roots : (string, string list option) Hashtbl.t;
      (** per function: closure of output root symbols; [None] = unbounded *)
}

let sym_ix t s = match Hashtbl.find_opt t.idx s with Some i -> i | None -> t.other_ix

(* State sets are small sorted int lists. *)
let step a set ix = List.sort_uniq compare (List.concat_map (fun s -> Nfa.successors a s ix) set)
let accepting a set = List.exists (Nfa.is_accepting a) set

(* ------------------------------------------------------------------ *)
(* Output-type closure: the element/data symbols a call to [fname] can
   eventually splice at its own position — the roots of its output
   content model, expanded through any function symbols among them
   (their results land at the same position). [None] when the chain runs
   through an undeclared function, whose results are unbounded. *)

let output_roots schema fname =
  let rec go visited acc fname =
    if List.mem fname visited then Some acc
    else
      match Schema.find_function schema fname with
      | None -> None
      | Some { Schema.output; _ } ->
        List.fold_left
          (fun acc c ->
            match acc with
            | None -> None
            | Some acc ->
              if Schema.find_function schema c <> None then go (fname :: visited) acc c
              else Some (if List.mem c acc then acc else c :: acc))
          (Some acc) (Regex.occurring_symbols output)
  in
  go [] [] fname

(* ------------------------------------------------------------------ *)
(* Compilation *)

let path_regex ~anchor q v =
  let steps = P.linear_part q v @ [ (v.P.axis, v.P.label) ] in
  let r = P.linear_regex steps in
  match anchor with `Root -> r | `Anywhere -> Regex.Seq (Regex.Star Regex.Any, r)

let compile ?schema ?(anchor = `Root) (q : P.t) =
  let pnodes = List.filter (fun n -> n.P.label <> P.Or) (P.nodes q) in
  let hit_paths = List.map (path_regex ~anchor q) pnodes in
  let hit_paths = if hit_paths = [] then [ Regex.Star Regex.Any ] else hit_paths in
  let sub_paths =
    List.filter_map
      (fun v -> if v.P.label = P.Or then None else Some (path_regex ~anchor q v))
      (P.result_nodes q)
  in
  let extra =
    Schema.data_keyword :: (match schema with Some s -> Schema.all_symbols s | None -> [])
  in
  let alphabet =
    Nfa.common_alphabet
      ((Regex.alt hit_paths :: List.map (fun s -> Regex.Sym s) extra)
      @ match sub_paths with [] -> [] | ps -> [ Regex.alt ps ])
  in
  let hit = Nfa.of_regex ~alphabet (Regex.alt hit_paths) in
  let sub =
    match sub_paths with [] -> None | ps -> Some (Nfa.of_regex ~alphabet (Regex.alt ps))
  in
  let alpha = Array.of_list (Nfa.alphabet hit) in
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i s -> Hashtbl.replace idx s i) alpha;
  let other_ix = Hashtbl.find idx Nfa.other_symbol in
  let data_ix = Hashtbl.find idx Schema.data_keyword in
  let nstates = Nfa.size hit and nsyms = Array.length alpha in
  (* reach0.(s): accepting reachable in ≥ 0 steps. *)
  let reach0 = Array.init nstates (Nfa.is_accepting hit) in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to nstates - 1 do
      if not reach0.(s) then
        for k = 0 to nsyms - 1 do
          if (not reach0.(s)) && List.exists (fun s' -> reach0.(s')) (Nfa.successors hit s k)
          then begin
            reach0.(s) <- true;
            changed := true
          end
        done
    done
  done;
  let can_reach =
    Array.init nstates (fun s ->
        let found = ref false in
        for k = 0 to nsyms - 1 do
          if (not !found) && List.exists (fun s' -> reach0.(s')) (Nfa.successors hit s k)
          then found := true
        done;
        !found)
  in
  (* Per symbol: the child-step symbol indices its content model admits,
     or [None] when unconstrained (no schema, undefined name, the
     witness symbol, or an undeclared function in the content). *)
  let out_roots = Hashtbl.create 8 in
  let roots fname =
    match Hashtbl.find_opt out_roots fname with
    | Some r -> r
    | None ->
      let r = match schema with None -> None | Some sc -> output_roots sc fname in
      Hashtbl.replace out_roots fname r;
      r
  in
  let kinds =
    Array.map
      (fun s ->
        if String.equal s Schema.data_keyword then Some []
        else
          match schema with
          | None -> None
          | Some sc -> (
            match Schema.find_element sc s with
            | None -> None
            | Some content ->
              List.fold_left
                (fun acc c ->
                  match acc with
                  | None -> None
                  | Some acc -> (
                    if Schema.find_function sc c <> None then
                      match roots c with
                      | None -> None
                      | Some rs ->
                        Some
                          (List.fold_left
                             (fun acc r ->
                               let i =
                                 match Hashtbl.find_opt idx r with
                                 | Some i -> i
                                 | None -> other_ix
                               in
                               if List.mem i acc then acc else i :: acc)
                             acc rs)
                    else
                      let i =
                        match Hashtbl.find_opt idx c with Some i -> i | None -> other_ix
                      in
                      Some (if List.mem i acc then acc else i :: acc)))
                (Some []) (Regex.occurring_symbols content)))
      alpha
  in
  (* live.(s).(k): below a node labeled alpha.(k) reached in state s, can
     a schema-admissible descendant chain still reach acceptance? *)
  let live = Array.make_matrix nstates nsyms false in
  let changed = ref true in
  while !changed do
    changed := false;
    for s = 0 to nstates - 1 do
      for k = 0 to nsyms - 1 do
        if not live.(s).(k) then begin
          let v =
            match kinds.(k) with
            | None -> can_reach.(s)
            | Some cs ->
              List.exists
                (fun c ->
                  List.exists
                    (fun s' -> Nfa.is_accepting hit s' || live.(s').(c))
                    (Nfa.successors hit s c))
                cs
          in
          if v then begin
            live.(s).(k) <- true;
            changed := true
          end
        end
      done
    done
  done;
  {
    hit;
    sub;
    idx;
    other_ix;
    data_ix;
    schema;
    fun_nodes = P.has_function_nodes q;
    live;
    can_reach;
    out_roots;
  }

(* ------------------------------------------------------------------ *)
(* The walk *)

type ctx = { sh : int list; ss : int list }

let start_ctx t =
  { sh = [ Nfa.start t.hit ]; ss = (match t.sub with None -> [] | Some a -> [ Nfa.start a ]) }

let live_set t set ix = List.exists (fun s -> t.live.(s).(ix)) set

(* Is a call to [fname] worth keeping when its (future) results would
   step from the hit-state set [sh]? *)
let call_useful t sh fname =
  if sh = [] then false
  else if t.fun_nodes then true
  else
    match t.schema with
    | None -> true
    | Some sc -> (
      match
        (match Hashtbl.find_opt t.out_roots fname with
        | Some r -> r
        | None ->
          let r = output_roots sc fname in
          Hashtbl.replace t.out_roots fname r;
          r)
      with
      | None -> true
      | Some rs ->
        List.exists
          (fun r ->
            let ix = sym_ix t r in
            let s' = step t.hit sh ix in
            accepting t.hit s' || live_set t s' ix)
          rs)

type decision = Drop | Keep_all | Recurse of ctx

let decide t ctx (label : [ `Elem of string | `Data | `Call of string ]) =
  match label with
  | `Call fname -> if call_useful t ctx.sh fname then Keep_all else Drop
  | `Data | `Elem _ ->
    let ix = match label with `Data -> t.data_ix | `Elem name -> sym_ix t name | _ -> t.other_ix in
    let sh' = step t.hit ctx.sh ix in
    let ss' = match t.sub with None -> [] | Some a -> step a ctx.ss ix in
    if (match t.sub with Some a -> accepting a ss' | None -> false) then Keep_all
    else if accepting t.hit sh' then Recurse { sh = sh'; ss = ss' }
    else if sh' <> [] && live_set t sh' ix then Recurse { sh = sh'; ss = ss' }
    else Drop

(* ------------------------------------------------------------------ *)
(* Pure trees (wire layer): <axml:call> elements are function nodes. *)

let tree_label (tr : Tree.t) =
  match tr with
  | Tree.Text _ -> `Data
  | Tree.Element { name; attrs; _ } when String.equal name Doc.call_elem_name -> (
    match List.assoc_opt "name" attrs with Some f -> `Call f | None -> `Call "")
  | Tree.Element { name; _ } -> `Elem name

(* [keep_tree] and [prune_node] account nodes only; bytes saved are
   measured at the public entry points as the exact serialization
   difference, because dropping all of an element's children also
   shrinks its own shell (<e>…</e> becomes <e/>). *)
let rec keep_tree t ctx (tr : Tree.t) st =
  match decide t ctx (tree_label tr) with
  | Drop ->
    st := add_stats !st { full_nodes = Tree.size tr; kept_nodes = 0; bytes_saved = 0 };
    None
  | Keep_all ->
    let n = Tree.size tr in
    st := add_stats !st { full_nodes = n; kept_nodes = n; bytes_saved = 0 };
    Some tr
  | Recurse ctx' -> (
    st := add_stats !st { full_nodes = 1; kept_nodes = 1; bytes_saved = 0 };
    match tr with
    | Tree.Text _ -> Some tr
    | Tree.Element e ->
      Some (Tree.Element { e with children = List.filter_map (fun c -> keep_tree t ctx' c st) e.children }))

let tree t tr =
  let full_bytes = Print.byte_size tr in
  let st = ref zero_stats in
  let tr' =
    match keep_tree t (start_ctx t) tr st with
    | Some tr' -> tr'
    | None -> (
      (* the document root is never dropped: keep its bare shell *)
      match tr with
      | Tree.Text _ as leaf ->
        st := { !st with kept_nodes = 1 };
        leaf
      | Tree.Element e ->
        st := { !st with kept_nodes = 1 };
        Tree.Element { e with children = [] })
  in
  (tr', { !st with bytes_saved = full_bytes - Print.byte_size tr' })

let forest t f =
  let full_bytes = Print.forest_byte_size f in
  let st = ref zero_stats in
  let kept = List.filter_map (fun tr -> keep_tree t (start_ctx t) tr st) f in
  (kept, { !st with bytes_saved = full_bytes - Print.forest_byte_size kept })

(* ------------------------------------------------------------------ *)
(* Live documents (parse and engine layers): in-place detachment. *)

let rec dnode_size (n : Doc.node) = 1 + List.fold_left (fun a c -> a + dnode_size c) 0 n.Doc.children

let doc_label (n : Doc.node) =
  match n.Doc.label with
  | Doc.Elem name -> `Elem name
  | Doc.Data _ -> `Data
  | Doc.Call { Doc.fname; _ } -> `Call fname

let rec prune_node t ctx d (n : Doc.node) st =
  match decide t ctx (doc_label n) with
  | Drop ->
    st := add_stats !st { full_nodes = dnode_size n; kept_nodes = 0; bytes_saved = 0 };
    Doc.remove_node d n;
    false
  | Keep_all ->
    let k = dnode_size n in
    st := add_stats !st { full_nodes = k; kept_nodes = k; bytes_saved = 0 };
    true
  | Recurse ctx' ->
    st := add_stats !st { full_nodes = 1; kept_nodes = 1; bytes_saved = 0 };
    (* [remove_node] rewrites the child list: snapshot before iterating *)
    let snapshot = n.Doc.children in
    List.iter (fun c -> ignore (prune_node t ctx' d c st)) snapshot;
    true

(* [remove_node] rewrites the parent's child list, so snapshot before
   iterating *)
let prune_children t ctx d (n : Doc.node) st =
  let snapshot = n.Doc.children in
  List.iter (fun c -> ignore (prune_node t ctx d c st)) snapshot

let doc t d =
  let st = ref zero_stats in
  let root = Doc.root d in
  let full_bytes = Print.byte_size (Doc.node_to_xml root) in
  (match decide t (start_ctx t) (doc_label root) with
  | Drop ->
    (* never drop the root; drop its children instead *)
    let full = dnode_size root in
    st := { full_nodes = full; kept_nodes = 1; bytes_saved = 0 };
    let snapshot = root.Doc.children in
    List.iter (fun c -> Doc.remove_node d c) snapshot
  | Keep_all ->
    let k = dnode_size root in
    st := add_stats !st { full_nodes = k; kept_nodes = k; bytes_saved = 0 }
  | Recurse ctx' ->
    st := add_stats !st { full_nodes = 1; kept_nodes = 1; bytes_saved = 0 };
    prune_children t ctx' d root st);
  { !st with bytes_saved = full_bytes - Print.byte_size (Doc.node_to_xml root) }

(* Context along root → parent, stepping both automata; [`Keep_all] when
   an ancestor already lies under a result image (or is a call/data
   node, which splicing should never produce — be conservative). *)
let parent_context t (parent : Doc.node) =
  let chain = List.rev (parent :: Doc.ancestors parent) in
  let rec go ctx = function
    | [] -> `Ctx ctx
    | n :: rest -> (
      match n.Doc.label with
      | Doc.Data _ | Doc.Call _ -> `Keep_all
      | Doc.Elem name ->
        let ix = sym_ix t name in
        let sh = step t.hit ctx.sh ix in
        let ss = match t.sub with None -> [] | Some a -> step a ctx.ss ix in
        if match t.sub with Some a -> accepting a ss | None -> false then `Keep_all
        else go { sh; ss } rest)
  in
  go (start_ctx t) chain

(* Pre-splice variant: project the service-result forest {e before}
   {!Doc.replace_call} imports it, against the state context of the
   call's parent. Same decisions and stats as {!spliced} (the kept/
   dropped sets and serialized sizes coincide tree-for-tree), but the
   document is never mutated after the splice — so an incremental
   snapshot-view patch installed by [replace_call] stays valid. *)
let spliced_forest t ~parent (f : Tree.forest) =
  match parent_context t parent with
  | `Keep_all ->
    let k = List.fold_left (fun a tr -> a + Tree.size tr) 0 f in
    (f, { full_nodes = k; kept_nodes = k; bytes_saved = 0 })
  | `Ctx ctx ->
    let full_bytes = Print.forest_byte_size f in
    let st = ref zero_stats in
    let kept = List.filter_map (fun tr -> keep_tree t ctx tr st) f in
    (kept, { !st with bytes_saved = full_bytes - Print.forest_byte_size kept })

let spliced t d ~added =
  match added with
  | [] -> ([], zero_stats)
  | n0 :: _ -> (
    match n0.Doc.parent with
    | None -> (added, zero_stats)
    | Some parent -> (
      match parent_context t parent with
      | `Keep_all ->
        let k = List.fold_left (fun a n -> a + dnode_size n) 0 added in
        (added, { full_nodes = k; kept_nodes = k; bytes_saved = 0 })
      | `Ctx ctx ->
        let full_bytes =
          List.fold_left (fun a n -> a + Print.byte_size (Doc.node_to_xml n)) 0 added
        in
        let st = ref zero_stats in
        let kept = List.filter (fun n -> prune_node t ctx d n st) added in
        let kept_bytes =
          List.fold_left (fun a n -> a + Print.byte_size (Doc.node_to_xml n)) 0 kept
        in
        (kept, { !st with bytes_saved = full_bytes - kept_bytes })))

let keeps_call t _d ~fname ~parent =
  match parent_context t parent with
  | `Keep_all -> true
  | `Ctx ctx -> call_useful t ctx.sh fname
